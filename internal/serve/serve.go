// Package serve is the spotserved daemon: a long-running HTTP management
// plane over the scenario-sweep harness. Many concurrent clients share one
// warm process — submitted grid jobs queue onto a bounded FIFO (backpressure
// is an explicit 429, never an unbounded buffer), run one at a time on the
// existing experiments.Sweep worker pool (each job parallelizes across all
// cores), and stream partial grid rows as NDJSON the moment each cell's
// last seed replica finishes. Completed cell replicas are cached by
// fingerprint-equivalent scenario identity (experiments.Scenario.CacheKey),
// so a repeated what-if query is served without simulating.
//
// Determinism is the contract: a job's rendered result is byte-identical to
// the equivalent `experiments -exp scenarios` CLI run at the same seed, the
// per-row replica fingerprints match the CLI's, and cache-on == cache-off
// (the cache replays stored results of the same deterministic key). The
// serve tests pin all three.
//
// API (see docs/ARCHITECTURE.md for the full schema):
//
//	POST   /jobs        submit a scenario.JobSpec JSON body → 202 + job id
//	                    (400 bad spec, 429 queue full, 503 shutting down)
//	POST   /calibrate   submit an observed trace (calibrate.ParseObserved
//	                    formats) → 202 + job id; the job replays the trace's
//	                    scenario, streams its single row, and its terminal
//	                    status carries the tolerance-scored report —
//	                    byte-identical to `experiments -exp calibrate`
//	GET    /jobs        list job statuses, submission order
//	GET    /jobs/{id}   poll one job: state, rows done, cache hits, render
//	DELETE /jobs/{id}   cancel a queued or running job cooperatively
//	GET    /jobs/{id}/stream  NDJSON: one Row per line as cells finish, then
//	                    a terminal {"done": true, ...} line whose status
//	                    distinguishes done/degraded/cancelled/deadline
//	GET    /healthz     liveness: "ok" (503 once shutdown begins)
//	GET    /stats       queue depth/capacity, job counts, cache hit rate,
//	                    retry/failure counters
//
// Jobs run fault-isolated: one failing cell degrades to an n/a row, the
// rest of the grid completes, and the job ends "degraded" rather than
// "failed". Per-job deadlines (spec deadline_ms) and DELETE cancellation
// are cooperative — cells already simulating finish (and stay
// byte-identical), cells not yet started short-circuit.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"spotserve/internal/calibrate"
	"spotserve/internal/experiments"
	"spotserve/internal/faults"
	"spotserve/internal/scenario"
)

// Options configures the daemon.
type Options struct {
	// QueueDepth bounds the job queue (queued + running); submissions
	// beyond it are rejected with 429. <= 0 means DefaultQueueDepth.
	QueueDepth int
	// Parallel is the sweep worker pool size per job (<= 0 = all cores).
	Parallel int
	// CacheCells bounds the cell cache (completed per-seed replicas);
	// <= 0 means DefaultCacheCells.
	CacheCells int
	// DisableCache turns the cell cache off — every job simulates every
	// replica. The equivalence tests run the same job spec with the cache
	// on and off and require identical fingerprints.
	DisableCache bool
	// Retry is the per-cell retry policy applied to every job's sweep.
	// The zero value attempts each replica once. Retries are deterministic
	// (capped exponential backoff, no jitter) and never perturb results —
	// a retried cell re-runs the same seeded simulation.
	Retry experiments.RetryPolicy
	// Faults, when non-nil, injects the chaos plan into every job's sweep
	// — the daemon's chaos mode (-chaos flags, the `make chaos` suite).
	// Injection is deterministic per (plan seed, cell, attempt) and can
	// only replace results with error rows, never alter them.
	Faults *faults.Plan
	// MaxBodyBytes bounds request bodies (<= 0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
}

// DefaultQueueDepth bounds the job queue when Options leaves it zero.
const DefaultQueueDepth = 16

// DefaultCacheCells bounds the cell cache when Options leaves it zero —
// roughly 80 repeats of the 50-cell default grid at one seed.
const DefaultCacheCells = 4096

// DefaultMaxBodyBytes bounds request bodies when Options leaves it zero.
const DefaultMaxBodyBytes = 1 << 20

// Server is the daemon state: job registry, bounded queue, cell cache and
// the single runner goroutine draining the queue.
type Server struct {
	opts  Options
	cache *cellCache // nil when disabled

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order
	nextID  int
	served  int // jobs reaching a terminal state
	closing bool

	queue  chan *Job
	runner sync.WaitGroup

	// testJobStart, when non-nil, is called at the start of each job run —
	// the backpressure tests use it to hold the runner busy. Set before
	// the first submission; never set in production.
	testJobStart func(*Job)
}

// New builds a daemon and starts its runner. Callers own the HTTP listener
// (mount Handler) and must Shutdown to drain.
func New(opts Options) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.CacheCells <= 0 {
		opts.CacheCells = DefaultCacheCells
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{
		opts:  opts,
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, opts.QueueDepth),
	}
	if !opts.DisableCache {
		s.cache = newCellCache(opts.CacheCells)
	}
	s.runner.Add(1)
	go s.run()
	return s
}

// run drains the job queue until Shutdown closes it. Jobs run one at a
// time — each job already saturates the cores through the sweep pool, so
// job-level concurrency would only interleave nondeterministically.
func (s *Server) run() {
	defer s.runner.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one job through the fault-tolerant streaming grid sweep.
// Cell failures degrade to error rows (the job ends "degraded"), a client
// cancel or expired deadline short-circuits the sweep cooperatively, and a
// whole-job panic still fails the job rather than the daemon.
func (s *Server) runJob(job *Job) {
	defer func() {
		s.mu.Lock()
		s.served++
		s.mu.Unlock()
	}()
	if job.isCancelled() {
		job.finish(outcome{state: StateCancelled, errMsg: "cancelled before start"})
		return
	}
	job.setState(StateRunning)
	if s.testJobStart != nil {
		s.testJobStart(job)
	}

	// The job context: cancelled by DELETE /jobs/{id} (via cancelCh) or by
	// the per-job deadline, clocked from run start — queue wait is
	// backpressure, not work.
	ctx, cancel := context.WithCancel(context.Background())
	if job.deadline > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), job.deadline)
	}
	watchDone := make(chan struct{})
	defer func() {
		close(watchDone)
		cancel()
	}()
	go func() {
		select {
		case <-job.cancelCh:
			cancel()
		case <-watchDone:
		}
	}()

	var o outcome
	cells := 0
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("job panicked: %v", r)
			}
		}()
		if job.Kind == KindCalibrate {
			return s.runCalibrate(job, &o)
		}
		grid, err := job.Spec.Grid()
		if err != nil {
			return err
		}
		sw := job.Spec.Sweep()
		sw.Parallel = s.opts.Parallel
		sw.Context = ctx
		sw.Retry = s.opts.Retry
		counting := s.jobCache()
		if counting != nil {
			sw.Cache = counting
		}
		if s.opts.Faults != nil {
			sw.Inject = s.opts.Faults.Hook()
		}
		rows, err := scenario.GridSweepTolerant(grid, sw, func(cell int, row scenario.GridRow) {
			job.emit(Row{Cell: cell, GridRow: row})
		})
		if err != nil {
			return err
		}
		cells = len(rows)
		o.render = scenario.RenderGrid(rows)
		for _, r := range rows {
			o.retries += r.Retries
			if r.Err != "" {
				o.failedCells++
			}
		}
		if counting != nil {
			o.hits, o.misses = counting.counts()
		}
		return nil
	}()

	// Classify the terminal state: an explicit cancel or expired deadline
	// wins over degradation (the n/a rows are a consequence, not a cause);
	// all-cells-failed is a failure, partial failure is degradation.
	switch {
	case err != nil:
		o.state, o.errMsg = StateFailed, err.Error()
	case job.isCancelled():
		o.state, o.errMsg = StateCancelled, "cancelled by client"
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		o.state, o.errMsg = StateDeadline, fmt.Sprintf("deadline %v exceeded", job.deadline)
	case cells > 0 && o.failedCells == cells:
		o.state, o.errMsg = StateFailed, fmt.Sprintf("all %d cells failed", cells)
	case o.failedCells > 0:
		o.state = StateDegraded
	default:
		o.state = StateDone
	}
	job.finish(o)
}

// jobCache assembles one job's counting cache view over the shared cell
// store (nil when the cache is disabled). In chaos mode the outage wrapper
// sits between the counter and the store, so an outage is attributed as a
// miss. Shared by grid and calibrate jobs, so cache semantics cannot drift
// between the two kinds.
func (s *Server) jobCache() *countingCache {
	if s.cache == nil {
		return nil
	}
	var rc experiments.ResultCache = s.cache
	if s.opts.Faults != nil {
		rc = s.opts.Faults.WrapCache(rc)
	}
	return &countingCache{inner: rc}
}

// runCalibrate executes a calibrate job: replay the observed trace's
// scenario through the shared cell cache, stream the single replayed row,
// and record the tolerance-scored report. The render and report are
// byte-identical to the `experiments -exp calibrate` CLI path — the
// equivalence test pins it.
func (s *Server) runCalibrate(job *Job, o *outcome) error {
	opts := calibrate.Options{
		Parallel: s.opts.Parallel,
		OnRow: func(row scenario.GridRow) {
			job.emit(Row{Cell: 0, GridRow: row})
		},
	}
	counting := s.jobCache()
	if counting != nil {
		opts.Cache = counting
	}
	rep, err := calibrate.Run(*job.Observed, opts)
	if err != nil {
		return err
	}
	o.render = rep.Render()
	o.calibration = rep
	if counting != nil {
		o.hits, o.misses = counting.counts()
	}
	return nil
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/calibrate", s.handleCalibrate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// Submit validates and enqueues a job spec, returning the queued job. It is
// the programmatic form of POST /jobs; ErrQueueFull and ErrShuttingDown
// report backpressure and drain.
func (s *Server) Submit(spec scenario.JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	grid, err := spec.Grid()
	if err != nil {
		return nil, err
	}
	cells, err := grid.Cells()
	if err != nil {
		return nil, err
	}
	seeds := len(spec.Sweep().Seeds)
	return s.enqueue(func(id string) *Job {
		return newJob(id, spec, len(cells), seeds)
	})
}

// SubmitCalibrate validates and enqueues a calibration job for an observed
// trace: the job replays the trace's scenario (one cell), streams its row,
// and finishes with the tolerance-scored report in its status. It shares
// the grid jobs' queue, backpressure and cell cache; the Spec recorded on
// the job mirrors the trace's scenario reference for display.
func (s *Server) SubmitCalibrate(obs calibrate.ObservedTrace) (*Job, error) {
	if err := obs.Validate(); err != nil {
		return nil, err
	}
	// Resolve the scenario now so a bad axis name fails the POST with the
	// registry's error text, not the job later.
	if err := obs.ResolveScenario(); err != nil {
		return nil, err
	}
	ref := obs.Scenario.WithDefaults()
	obsCopy := obs
	spec := scenario.JobSpec{
		Avail:    []string{ref.Avail},
		Policies: []string{ref.Policy},
		Fleets:   []string{ref.Fleet},
		Systems:  []string{ref.System},
		Market:   ref.Market,
		Model:    ref.Model,
		SLO:      ref.SLO,
		Seed:     ref.Seed,
		Seeds:    ref.Seeds,
	}
	return s.enqueue(func(id string) *Job {
		job := newJob(id, spec, 1, ref.Seeds)
		job.Kind = KindCalibrate
		job.Observed = &obsCopy
		return job
	})
}

// enqueue registers and queues one job under the registry lock — the shared
// tail of Submit and SubmitCalibrate. The queue slot is reserved while
// holding the lock so a full queue never registers a job it cannot accept.
func (s *Server) enqueue(build func(id string) *Job) (*Job, error) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	s.nextID++
	job := build(fmt.Sprintf("job-%06d", s.nextID))
	select {
	case s.queue <- job:
	default:
		s.nextID--
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()
	return job, nil
}

// Job looks up a submitted job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Sentinel submission errors, mapped to 429/503 by the HTTP layer.
var (
	ErrQueueFull    = fmt.Errorf("serve: job queue full")
	ErrShuttingDown = fmt.Errorf("serve: shutting down")
)

// Shutdown drains the daemon: new submissions are refused immediately, and
// every already-accepted job (queued and running) completes unless ctx
// expires first. On a expired ctx the still-unfinished jobs are failed so
// blocked stream clients unblock, and the context error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	close(s.queue) // submits check closing under mu, so no send can race
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.runner.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, id := range s.order {
			j := s.jobs[id]
			if st := j.status(false); !terminal(st.State) {
				j.finish(outcome{state: StateFailed, errMsg: "server shutdown before job finished"})
			}
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// --- HTTP handlers ---

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		s.handleList(w)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r, s.opts.MaxBodyBytes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := scenario.ParseJobSpec(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	job, err := s.Submit(spec)
	switch err {
	case nil:
	case ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case ErrShuttingDown:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Location", "/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":         job.ID,
		"cells":      job.Cells,
		"seeds":      job.Seeds,
		"status_url": "/jobs/" + job.ID,
		"stream_url": "/jobs/" + job.ID + "/stream",
	})
}

// handleCalibrate accepts an observed trace (either calibrate.ParseObserved
// format) and queues its calibration job, mirroring POST /jobs' error
// mapping (400 bad trace, 429 queue full, 503 shutting down).
func (s *Server) handleCalibrate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := readBody(r, s.opts.MaxBodyBytes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	obs, err := calibrate.ParseObserved(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	job, err := s.SubmitCalibrate(obs)
	switch err {
	case nil:
	case ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case ErrShuttingDown:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Location", "/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":         job.ID,
		"kind":       job.Kind,
		"cells":      job.Cells,
		"seeds":      job.Seeds,
		"status_url": "/jobs/" + job.ID,
		"stream_url": "/jobs/" + job.ID + "/stream",
	})
}

func (s *Server) handleList(w http.ResponseWriter) {
	s.mu.Lock()
	statuses := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.jobs[id].status(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodDelete {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	job, ok := s.Job(id)
	if !ok {
		http.Error(w, fmt.Sprintf("no job %q", id), http.StatusNotFound)
		return
	}
	if r.Method == http.MethodDelete {
		if sub != "" {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		took := job.Cancel()
		writeJSON(w, http.StatusOK, map[string]any{
			"id":        job.ID,
			"cancelled": took,
			"state":     job.status(false).State,
		})
		return
	}
	switch sub {
	case "":
		writeJSON(w, http.StatusOK, job.status(true))
	case "stream":
		s.handleStream(w, r, job)
	default:
		http.Error(w, fmt.Sprintf("no endpoint %q", sub), http.StatusNotFound)
	}
}

// handleStream writes NDJSON: every completed row (backlog first, then live
// as cells finish), terminated by a {"done": true} status line whose state
// distinguishes done, degraded, cancelled, deadline and failed. Each line
// is flushed as written so a client watches the grid fill in. A client
// that disconnects mid-stream is unsubscribed on the way out, so its dead
// channel never lingers on the job's fan-out list.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, job *Job) {
	backlog, live := job.subscribe()
	defer job.unsubscribe(live)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// Flush the headers before any row exists: a client must see the stream
	// open immediately (and be able to wait on it), not block until the
	// first cell of a possibly long or stalled job completes.
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	writeRow := func(row Row) bool {
		if err := enc.Encode(row); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, row := range backlog {
		if !writeRow(row) {
			return
		}
	}
	for {
		select {
		case row, ok := <-live:
			if !ok {
				st := job.status(false)
				// A failed Encode means the client is gone; there is no
				// stream left to repair, so stop without flushing.
				if err := enc.Encode(map[string]any{
					"done":         true,
					"state":        st.State,
					"error":        st.Error,
					"rows":         st.RowsDone,
					"failed_cells": st.FailedCells,
					"retries":      st.Retries,
				}); err != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			if !writeRow(row) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Stats is the /stats payload.
type Stats struct {
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	JobsQueued    int `json:"jobs_queued"`
	JobsRunning   int `json:"jobs_running"`
	JobsDone      int `json:"jobs_done"`
	JobsDegraded  int `json:"jobs_degraded"`
	JobsCancelled int `json:"jobs_cancelled"`
	JobsDeadline  int `json:"jobs_deadline"`
	JobsFailed    int `json:"jobs_failed"`
	JobsServed    int `json:"jobs_served"`
	// CellRetries / CellFailures total the fault-tolerance activity across
	// every job: extra attempts the retry policy ran, and cells that
	// degraded to error rows.
	CellRetries  int         `json:"cell_retries"`
	CellFailures int         `json:"cell_failures"`
	Cache        *CacheStats `json:"cache,omitempty"`
}

// StatsSnapshot assembles the current daemon counters.
func (s *Server) StatsSnapshot() Stats {
	s.mu.Lock()
	st := Stats{
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		JobsServed:    s.served,
	}
	for _, id := range s.order {
		js := s.jobs[id].status(false)
		st.CellRetries += js.Retries
		st.CellFailures += js.FailedCells
		switch js.State {
		case StateQueued:
			st.JobsQueued++
		case StateRunning:
			st.JobsRunning++
		case StateDone:
			st.JobsDone++
		case StateDegraded:
			st.JobsDegraded++
		case StateCancelled:
			st.JobsCancelled++
		case StateDeadline:
			st.JobsDeadline++
		case StateFailed:
			st.JobsFailed++
		}
	}
	s.mu.Unlock()
	if s.cache != nil {
		cs := s.cache.stats()
		st.Cache = &cs
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// --- small helpers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func readBody(r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	data, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return data, nil
}
