// Package serve is the spotserved daemon: a long-running HTTP management
// plane over the scenario-sweep harness. Many concurrent clients share one
// warm process — submitted grid jobs queue onto a bounded FIFO (backpressure
// is an explicit 429, never an unbounded buffer), run one at a time on the
// existing experiments.Sweep worker pool (each job parallelizes across all
// cores), and stream partial grid rows as NDJSON the moment each cell's
// last seed replica finishes. Completed cell replicas are cached by
// fingerprint-equivalent scenario identity (experiments.Scenario.CacheKey),
// so a repeated what-if query is served without simulating.
//
// Determinism is the contract: a job's rendered result is byte-identical to
// the equivalent `experiments -exp scenarios` CLI run at the same seed, the
// per-row replica fingerprints match the CLI's, and cache-on == cache-off
// (the cache replays stored results of the same deterministic key). The
// serve tests pin all three.
//
// API (see docs/ARCHITECTURE.md for the full schema):
//
//	POST /jobs         submit a scenario.JobSpec JSON body → 202 + job id
//	                   (400 bad spec, 429 queue full, 503 shutting down)
//	GET  /jobs         list job statuses, submission order
//	GET  /jobs/{id}    poll one job: state, rows done, cache hits, render
//	GET  /jobs/{id}/stream  NDJSON: one Row per line as cells finish, then
//	                   a terminal {"done": true, ...} line
//	GET  /healthz      liveness: "ok" (503 once shutdown begins)
//	GET  /stats        queue depth/capacity, job counts, cache hit rate
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"spotserve/internal/scenario"
)

// Options configures the daemon.
type Options struct {
	// QueueDepth bounds the job queue (queued + running); submissions
	// beyond it are rejected with 429. <= 0 means DefaultQueueDepth.
	QueueDepth int
	// Parallel is the sweep worker pool size per job (<= 0 = all cores).
	Parallel int
	// CacheCells bounds the cell cache (completed per-seed replicas);
	// <= 0 means DefaultCacheCells.
	CacheCells int
	// DisableCache turns the cell cache off — every job simulates every
	// replica. The equivalence tests run the same job spec with the cache
	// on and off and require identical fingerprints.
	DisableCache bool
}

// DefaultQueueDepth bounds the job queue when Options leaves it zero.
const DefaultQueueDepth = 16

// DefaultCacheCells bounds the cell cache when Options leaves it zero —
// roughly 80 repeats of the 50-cell default grid at one seed.
const DefaultCacheCells = 4096

// Server is the daemon state: job registry, bounded queue, cell cache and
// the single runner goroutine draining the queue.
type Server struct {
	opts  Options
	cache *cellCache // nil when disabled

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order
	nextID  int
	served  int // jobs reaching a terminal state
	closing bool

	queue  chan *Job
	runner sync.WaitGroup

	// testJobStart, when non-nil, is called at the start of each job run —
	// the backpressure tests use it to hold the runner busy. Set before
	// the first submission; never set in production.
	testJobStart func(*Job)
}

// New builds a daemon and starts its runner. Callers own the HTTP listener
// (mount Handler) and must Shutdown to drain.
func New(opts Options) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.CacheCells <= 0 {
		opts.CacheCells = DefaultCacheCells
	}
	s := &Server{
		opts:  opts,
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, opts.QueueDepth),
	}
	if !opts.DisableCache {
		s.cache = newCellCache(opts.CacheCells)
	}
	s.runner.Add(1)
	go s.run()
	return s
}

// run drains the job queue until Shutdown closes it. Jobs run one at a
// time — each job already saturates the cores through the sweep pool, so
// job-level concurrency would only interleave nondeterministically.
func (s *Server) run() {
	defer s.runner.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one job through the streaming grid sweep, recovering a
// worker panic into a failed job rather than a dead daemon.
func (s *Server) runJob(job *Job) {
	job.setState(StateRunning)
	if s.testJobStart != nil {
		s.testJobStart(job)
	}
	var (
		render string
		hits   int
		misses int
	)
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("job panicked: %v", r)
			}
		}()
		grid, err := job.Spec.Grid()
		if err != nil {
			return err
		}
		sw := job.Spec.Sweep()
		sw.Parallel = s.opts.Parallel
		var counting *countingCache
		if s.cache != nil {
			counting = &countingCache{inner: s.cache}
			sw.Cache = counting
		}
		rows, err := scenario.GridSweepStream(grid, sw, func(cell int, row scenario.GridRow) {
			job.emit(Row{Cell: cell, GridRow: row})
		})
		if err != nil {
			return err
		}
		render = scenario.RenderGrid(rows)
		if counting != nil {
			hits, misses = counting.counts()
		}
		return nil
	}()
	job.finish(render, hits, misses, err)
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// Submit validates and enqueues a job spec, returning the queued job. It is
// the programmatic form of POST /jobs; ErrQueueFull and ErrShuttingDown
// report backpressure and drain.
func (s *Server) Submit(spec scenario.JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	grid, err := spec.Grid()
	if err != nil {
		return nil, err
	}
	cells, err := grid.Cells()
	if err != nil {
		return nil, err
	}
	seeds := len(spec.Sweep().Seeds)

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	s.nextID++
	job := newJob(fmt.Sprintf("job-%06d", s.nextID), spec, len(cells), seeds)
	// Reserve the queue slot while holding the registry lock so a full
	// queue never registers a job it cannot accept.
	select {
	case s.queue <- job:
	default:
		s.nextID--
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()
	return job, nil
}

// Job looks up a submitted job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Sentinel submission errors, mapped to 429/503 by the HTTP layer.
var (
	ErrQueueFull    = fmt.Errorf("serve: job queue full")
	ErrShuttingDown = fmt.Errorf("serve: shutting down")
)

// Shutdown drains the daemon: new submissions are refused immediately, and
// every already-accepted job (queued and running) completes unless ctx
// expires first. On a expired ctx the still-unfinished jobs are failed so
// blocked stream clients unblock, and the context error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	close(s.queue) // submits check closing under mu, so no send can race
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.runner.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, id := range s.order {
			j := s.jobs[id]
			if st := j.status(false); st.State == StateQueued || st.State == StateRunning {
				j.finish("", 0, 0, fmt.Errorf("server shutdown before job finished"))
			}
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// --- HTTP handlers ---

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		s.handleList(w)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r, 1<<20)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := scenario.ParseJobSpec(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	job, err := s.Submit(spec)
	switch err {
	case nil:
	case ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case ErrShuttingDown:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Location", "/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":         job.ID,
		"cells":      job.Cells,
		"seeds":      job.Seeds,
		"status_url": "/jobs/" + job.ID,
		"stream_url": "/jobs/" + job.ID + "/stream",
	})
}

func (s *Server) handleList(w http.ResponseWriter) {
	s.mu.Lock()
	statuses := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.jobs[id].status(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	job, ok := s.Job(id)
	if !ok {
		http.Error(w, fmt.Sprintf("no job %q", id), http.StatusNotFound)
		return
	}
	switch sub {
	case "":
		writeJSON(w, http.StatusOK, job.status(true))
	case "stream":
		s.handleStream(w, r, job)
	default:
		http.Error(w, fmt.Sprintf("no endpoint %q", sub), http.StatusNotFound)
	}
}

// handleStream writes NDJSON: every completed row (backlog first, then live
// as cells finish), terminated by a {"done": true} status line. Each line
// is flushed as written so a client watches the grid fill in.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, job *Job) {
	backlog, live := job.subscribe()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeRow := func(row Row) bool {
		if err := enc.Encode(row); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, row := range backlog {
		if !writeRow(row) {
			return
		}
	}
	for {
		select {
		case row, ok := <-live:
			if !ok {
				st := job.status(false)
				enc.Encode(map[string]any{
					"done":  true,
					"state": st.State,
					"error": st.Error,
					"rows":  st.RowsDone,
				})
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			if !writeRow(row) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Stats is the /stats payload.
type Stats struct {
	QueueDepth    int        `json:"queue_depth"`
	QueueCapacity int        `json:"queue_capacity"`
	JobsQueued    int        `json:"jobs_queued"`
	JobsRunning   int        `json:"jobs_running"`
	JobsDone      int        `json:"jobs_done"`
	JobsFailed    int        `json:"jobs_failed"`
	JobsServed    int        `json:"jobs_served"`
	Cache         *CacheStats `json:"cache,omitempty"`
}

// StatsSnapshot assembles the current daemon counters.
func (s *Server) StatsSnapshot() Stats {
	s.mu.Lock()
	st := Stats{
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		JobsServed:    s.served,
	}
	for _, id := range s.order {
		switch s.jobs[id].status(false).State {
		case StateQueued:
			st.JobsQueued++
		case StateRunning:
			st.JobsRunning++
		case StateDone:
			st.JobsDone++
		case StateFailed:
			st.JobsFailed++
		}
	}
	s.mu.Unlock()
	if s.cache != nil {
		cs := s.cache.stats()
		st.Cache = &cs
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// --- small helpers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func readBody(r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	data, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return data, nil
}
