// Package faults is the deterministic fault-injection harness behind the
// repository's chaos testing. A Plan is a seeded, registry-named schedule
// of failures over the cells of a sweep — which cells are afflicted and
// what happens on each attempt is a pure function of (Seed, cell, attempt),
// so a chaos run is exactly reproducible: the same plan produces the same
// fault schedule every time, the same way every sweep is reproducible from
// its scenario seeds.
//
// Plans inject through two seams, both outside the simulation itself:
//
//   - Plan.Hook feeds experiments.Sweep.Inject, firing at the start of a
//     cell attempt (panic, transient error, stall) before the simulation
//     runs;
//   - Plan.WrapCache wraps an experiments.ResultCache so cache outages
//     degrade to misses (a dropped Put or failed Get forces a recompute,
//     never a wrong answer).
//
// Because injection never reaches inside a run, the determinism-under-
// faults guarantee holds by construction: every cell that does complete is
// byte-identical to the same cell in a fault-free sweep. The tests in this
// package and in internal/scenario pin both halves — schedule determinism
// and result determinism.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"spotserve/internal/experiments"
)

// Kind names a registered fault behavior.
type Kind string

const (
	// CellPanic makes every attempt of an afflicted cell panic — the
	// worst-case worker failure (persistent; retries cannot save it).
	CellPanic Kind = "cell-panic"
	// TransientError fails an afflicted cell's attempts with an error
	// until attempt SucceedAfter, which runs normally — the fault a retry
	// policy exists for.
	TransientError Kind = "transient-error"
	// SlowCell stalls an afflicted cell's attempt for Stall before running
	// it normally — the fault deadlines and cancellation exist for.
	SlowCell Kind = "slow-cell"
	// CacheOutage makes the result cache unavailable for afflicted keys:
	// Gets miss and Puts are dropped, forcing recomputation. It never
	// fails a cell (cache-on == cache-off is already pinned elsewhere).
	CacheOutage Kind = "cache-outage"
)

// Kinds lists the registered fault kinds in stable order.
func Kinds() []string {
	return []string{string(CellPanic), string(TransientError), string(SlowCell), string(CacheOutage)}
}

// ByName resolves a fault kind by registry name.
func ByName(name string) (Kind, bool) {
	for _, k := range Kinds() {
		if k == name {
			return Kind(name), true
		}
	}
	return "", false
}

// Plan is one seeded chaos schedule. The zero value is invalid; fill Kind
// plus either Cells or Rate and call Validate (the sweep entry points do).
type Plan struct {
	// Kind is the registered fault behavior.
	Kind Kind
	// Seed derives the affliction hash; two plans with equal (Kind, Seed,
	// Rate, Cells, SucceedAfter) produce identical schedules.
	Seed int64
	// Cells, when non-empty, afflicts exactly these sweep job indices
	// (cell×seeds+replica in a replicated sweep) and ignores Rate.
	Cells []int
	// Rate afflicts this fraction of cells by seeded hash when Cells is
	// empty (0 < Rate <= 1).
	Rate float64
	// SucceedAfter is the first succeeding attempt for transient-error
	// (default 3: attempts 1 and 2 fail). Ignored by other kinds.
	SucceedAfter int
	// Stall is slow-cell's injected delay (default 100ms).
	Stall time.Duration
	// Sleep overrides how slow-cell stalls (default time.Sleep) — tests
	// substitute a blocking gate to make stalls fully deterministic.
	Sleep func(time.Duration)
}

// Validate checks the plan against the registry and its parameter domains.
func (p Plan) Validate() error {
	if _, ok := ByName(string(p.Kind)); !ok {
		return fmt.Errorf("faults: unknown kind %q (have %s)", p.Kind, strings.Join(Kinds(), ", "))
	}
	if len(p.Cells) == 0 && (p.Rate <= 0 || p.Rate > 1) {
		return fmt.Errorf("faults: plan needs explicit Cells or a Rate in (0,1], got rate %g", p.Rate)
	}
	if p.SucceedAfter < 0 {
		return fmt.Errorf("faults: SucceedAfter must be >= 0, got %d", p.SucceedAfter)
	}
	if p.Stall < 0 {
		return fmt.Errorf("faults: Stall must be >= 0, got %v", p.Stall)
	}
	return nil
}

// succeedAfter resolves the transient recovery attempt.
func (p Plan) succeedAfter() int {
	if p.SucceedAfter <= 0 {
		return 3
	}
	return p.SucceedAfter
}

// stall resolves slow-cell's delay.
func (p Plan) stall() time.Duration {
	if p.Stall <= 0 {
		return 100 * time.Millisecond
	}
	return p.Stall
}

// mix64 is a splitmix64-style avalanche over the plan seed and two words —
// the only randomness source in the package, so schedules depend on nothing
// but their inputs.
func mix64(seed int64, a, b uint64) uint64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + a*0xBF58476D1CE4E5B9 + b*0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Afflicts reports whether the plan fires on a sweep job index —
// deterministic in (Seed, cell): explicit Cells membership, or a seeded
// hash draw against Rate.
func (p Plan) Afflicts(cell int) bool {
	if len(p.Cells) > 0 {
		for _, c := range p.Cells {
			if c == cell {
				return true
			}
		}
		return false
	}
	return unit(mix64(p.Seed, uint64(cell)+1, 0xC3)) < p.Rate
}

// Action names what the plan does to one (cell, attempt): "panic", "error",
// "stall" or "" (no fault). It is the side-effect-free form of Hook, and
// what Schedule enumerates.
func (p Plan) Action(cell, attempt int) string {
	if !p.Afflicts(cell) {
		return ""
	}
	switch p.Kind {
	case CellPanic:
		return "panic"
	case TransientError:
		if attempt < p.succeedAfter() {
			return "error"
		}
		return ""
	case SlowCell:
		return "stall"
	}
	// cache-outage acts through WrapCache, never on the cell itself.
	return ""
}

// Hook returns the experiments.Sweep.Inject hook executing the plan: it
// panics, errors, or stalls exactly as Action prescribes for the (cell,
// attempt) it is invoked with.
func (p Plan) Hook() func(cell, attempt int) error {
	return func(cell, attempt int) error {
		switch p.Action(cell, attempt) {
		case "panic":
			panic(fmt.Sprintf("faults: injected panic (%s seed=%d cell=%d attempt=%d)",
				p.Kind, p.Seed, cell, attempt))
		case "error":
			return fmt.Errorf("faults: injected transient error (%s seed=%d cell=%d attempt=%d)",
				p.Kind, p.Seed, cell, attempt)
		case "stall":
			sleep := p.Sleep
			if sleep == nil {
				sleep = time.Sleep
			}
			sleep(p.stall())
		}
		return nil
	}
}

// Fault is one scheduled injection.
type Fault struct {
	Cell    int
	Attempt int
	Action  string
}

// Schedule enumerates every fault the plan would fire over cells×attempts,
// in (cell, attempt) order. Two calls with equal plans return identical
// schedules — the reproducibility contract the chaos tests pin.
func (p Plan) Schedule(cells, attempts int) []Fault {
	var out []Fault
	for c := 0; c < cells; c++ {
		for a := 1; a <= attempts; a++ {
			if act := p.Action(c, a); act != "" {
				out = append(out, Fault{Cell: c, Attempt: a, Action: act})
			}
		}
	}
	return out
}

// AfflictedCells lists the cells the plan fires on within [0, cells),
// sorted ascending.
func (p Plan) AfflictedCells(cells int) []int {
	var out []int
	for c := 0; c < cells; c++ {
		if p.Afflicts(c) {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// WrapCache decorates a result cache with the plan's outage schedule: for
// afflicted keys (seeded hash against Rate, or every key when Cells is
// set — an explicit total outage) Get reports a miss and Put is dropped.
// Outages force recomputation and can never alter results, because
// cache-on == cache-off is already a pinned invariant. Non-cache-outage
// plans return the cache unwrapped.
func (p Plan) WrapCache(inner experiments.ResultCache) experiments.ResultCache {
	if p.Kind != CacheOutage {
		return inner
	}
	return outageCache{plan: p, inner: inner}
}

type outageCache struct {
	plan  Plan
	inner experiments.ResultCache
}

// keyOut reports whether the outage covers a cache key: a seeded hash of
// the key against Rate, or total when explicit Cells were given. Keys, not
// call order, decide — sweep workers race on the cache, so any schedule
// keyed on call sequence would be nondeterministic.
func (c outageCache) keyOut(key string) bool {
	if len(c.plan.Cells) > 0 {
		return true
	}
	var h uint64 = 0xCBF29CE484222325
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001B3
	}
	return unit(mix64(c.plan.Seed, h, 0xA7)) < c.plan.Rate
}

func (c outageCache) Get(key string) (experiments.Result, bool) {
	if c.keyOut(key) {
		return experiments.Result{}, false
	}
	return c.inner.Get(key)
}

func (c outageCache) Put(key string, r experiments.Result) {
	if c.keyOut(key) {
		return
	}
	c.inner.Put(key, r)
}
