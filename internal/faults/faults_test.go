package faults

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"spotserve/internal/experiments"
)

// Same plan, same schedule — the chaos harness's reproducibility contract,
// across every registered kind and both affliction modes (Rate and Cells).
func TestSameSeedSameSchedule(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"panic-rate", Plan{Kind: CellPanic, Seed: 1, Rate: 0.2}},
		{"panic-cells", Plan{Kind: CellPanic, Seed: 9, Cells: []int{3, 17}}},
		{"transient-rate", Plan{Kind: TransientError, Seed: 2, Rate: 0.3}},
		{"transient-early", Plan{Kind: TransientError, Seed: 2, Rate: 0.3, SucceedAfter: 2}},
		{"slow-rate", Plan{Kind: SlowCell, Seed: 3, Rate: 0.5}},
		{"outage-rate", Plan{Kind: CacheOutage, Seed: 4, Rate: 0.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.plan.Validate(); err != nil {
				t.Fatal(err)
			}
			a := tc.plan.Schedule(64, 4)
			b := tc.plan.Schedule(64, 4)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same plan, different schedules:\n%v\n%v", a, b)
			}
			if !reflect.DeepEqual(tc.plan.AfflictedCells(64), tc.plan.AfflictedCells(64)) {
				t.Fatal("same plan, different afflicted cells")
			}
			// A reseeded copy must diverge somewhere (rate mode only —
			// explicit Cells ignore the seed by design).
			if len(tc.plan.Cells) == 0 && tc.plan.Kind != CacheOutage {
				reseeded := tc.plan
				reseeded.Seed += 1000
				if reflect.DeepEqual(a, reseeded.Schedule(64, 4)) {
					t.Fatal("reseeded plan produced the identical schedule")
				}
			}
		})
	}
}

func TestScheduleShapes(t *testing.T) {
	// Explicit cells: panic on every attempt of exactly those cells.
	p := Plan{Kind: CellPanic, Seed: 1, Cells: []int{2, 5}}
	want := []Fault{
		{Cell: 2, Attempt: 1, Action: "panic"},
		{Cell: 2, Attempt: 2, Action: "panic"},
		{Cell: 5, Attempt: 1, Action: "panic"},
		{Cell: 5, Attempt: 2, Action: "panic"},
	}
	if got := p.Schedule(8, 2); !reflect.DeepEqual(got, want) {
		t.Fatalf("panic schedule = %v, want %v", got, want)
	}

	// Transient: errors strictly before SucceedAfter, nothing from there on.
	tr := Plan{Kind: TransientError, Seed: 1, Cells: []int{0}, SucceedAfter: 3}
	want = []Fault{
		{Cell: 0, Attempt: 1, Action: "error"},
		{Cell: 0, Attempt: 2, Action: "error"},
	}
	if got := tr.Schedule(1, 5); !reflect.DeepEqual(got, want) {
		t.Fatalf("transient schedule = %v, want %v", got, want)
	}

	// Cache outage never acts on cells.
	co := Plan{Kind: CacheOutage, Seed: 1, Rate: 1}
	if got := co.Schedule(16, 3); len(got) != 0 {
		t.Fatalf("cache-outage schedule fired on cells: %v", got)
	}
}

func TestRateAfflictsFraction(t *testing.T) {
	p := Plan{Kind: CellPanic, Seed: 7, Rate: 0.25}
	got := len(p.AfflictedCells(10000))
	if got < 2000 || got > 3000 {
		t.Fatalf("rate 0.25 afflicted %d of 10000 cells", got)
	}
	if n := len(Plan{Kind: CellPanic, Seed: 7, Rate: 1}.AfflictedCells(100)); n != 100 {
		t.Fatalf("rate 1 afflicted %d of 100", n)
	}
}

func TestHookBehaviors(t *testing.T) {
	// Transient: error, error, then clean.
	hook := Plan{Kind: TransientError, Seed: 1, Cells: []int{0}}.Hook()
	for attempt := 1; attempt <= 4; attempt++ {
		err := hook(0, attempt)
		if attempt < 3 && err == nil {
			t.Fatalf("attempt %d: want injected error", attempt)
		}
		if attempt >= 3 && err != nil {
			t.Fatalf("attempt %d: unexpected error %v", attempt, err)
		}
	}
	if err := hook(1, 1); err != nil {
		t.Fatalf("unafflicted cell errored: %v", err)
	}

	// Panic: fires with an identifying message, every attempt.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cell-panic hook did not panic")
		}
		if !strings.Contains(r.(string), "injected panic") {
			t.Fatalf("panic message %q", r)
		}
	}()
	_ = Plan{Kind: CellPanic, Seed: 1, Cells: []int{4}}.Hook()(4, 1)
}

func TestSlowCellUsesSleepOverride(t *testing.T) {
	var slept []time.Duration
	p := Plan{Kind: SlowCell, Seed: 1, Cells: []int{2}, Stall: 250 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	hook := p.Hook()
	if err := hook(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := hook(3, 1); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(slept, []time.Duration{250 * time.Millisecond}) {
		t.Fatalf("slept %v, want one 250ms stall on the afflicted cell only", slept)
	}
}

// mapCache is a trivial ResultCache for outage tests.
type mapCache map[string]experiments.Result

func (m mapCache) Get(key string) (experiments.Result, bool) { r, ok := m[key]; return r, ok }
func (m mapCache) Put(key string, r experiments.Result)      { m[key] = r }

func TestCacheOutage(t *testing.T) {
	inner := mapCache{}
	total := Plan{Kind: CacheOutage, Seed: 1, Cells: []int{0}} // explicit cells = total outage
	wrapped := total.WrapCache(inner)
	wrapped.Put("k", experiments.Result{})
	if len(inner) != 0 {
		t.Fatal("total outage let a Put through")
	}
	inner["k"] = experiments.Result{}
	if _, ok := wrapped.Get("k"); ok {
		t.Fatal("total outage let a Get hit")
	}

	// Partial outage is keyed deterministically: the same key always gets
	// the same verdict, and roughly Rate of keys are out.
	part := Plan{Kind: CacheOutage, Seed: 5, Rate: 0.5}.WrapCache(mapCache{}).(outageCache)
	out := 0
	for i := 0; i < 1000; i++ {
		key := strings.Repeat("x", i%7) + string(rune('a'+i%26))
		first := part.keyOut(key)
		if part.keyOut(key) != first {
			t.Fatalf("key %q verdict flapped", key)
		}
		if first {
			out++
		}
	}
	if out == 0 || out == 1000 {
		t.Fatalf("rate 0.5 outage covered %d of 1000 keys", out)
	}

	// Non-outage plans must not interpose.
	if got := (Plan{Kind: CellPanic, Seed: 1, Rate: 0.5}).WrapCache(inner); !reflect.DeepEqual(got, inner) {
		t.Fatal("non-outage plan wrapped the cache")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero", Plan{}, false},
		{"unknown-kind", Plan{Kind: "meteor-strike", Rate: 0.5}, false},
		{"no-rate-no-cells", Plan{Kind: CellPanic}, false},
		{"rate-too-big", Plan{Kind: CellPanic, Rate: 1.5}, false},
		{"negative-succeed", Plan{Kind: TransientError, Rate: 0.5, SucceedAfter: -1}, false},
		{"negative-stall", Plan{Kind: SlowCell, Rate: 0.5, Stall: -time.Second}, false},
		{"ok-rate", Plan{Kind: TransientError, Rate: 0.5}, true},
		{"ok-cells", Plan{Kind: CellPanic, Cells: []int{0}}, true},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	if _, ok := ByName("cell-panic"); !ok {
		t.Fatal("ByName missed a registered kind")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted an unknown kind")
	}
}
