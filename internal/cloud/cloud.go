// Package cloud simulates a cloud provider offering preemptible (spot) and
// on-demand GPU instances, in the style of AWS g4dn: four GPUs per
// instance, a grace period between preemption notice and termination, an
// acquisition delay for new instances, and per-second billing at different
// spot and on-demand prices.
//
// Spot availability is driven by replaying a trace.Trace: the fleet holds
// exactly the offered spot instances (the paper's N_t), so preemptions and
// acquisitions arrive as notifications exactly like the real cloud's.
// On-demand instances are allocated and released dynamically by the serving
// system (Algorithm 1 lines 8/10).
package cloud

import (
	"fmt"
	"math/rand"
	"sort"

	"spotserve/internal/market"
	"spotserve/internal/metrics"
	"spotserve/internal/sim"
	"spotserve/internal/trace"
)

// Kind distinguishes instance markets.
type Kind int

const (
	// Spot instances are cheap but preemptible.
	Spot Kind = iota
	// OnDemand instances are stable but expensive.
	OnDemand
)

func (k Kind) String() string {
	if k == Spot {
		return "spot"
	}
	return "on-demand"
}

// State is the lifecycle state of an instance.
type State int

const (
	// Pending: requested, still provisioning (acquisition delay).
	Pending State = iota
	// Running: ready to host inference engines.
	Running
	// Noticed: received a preemption notice; terminates at Deadline.
	Noticed
	// Terminated: gone; its GPUs are unusable.
	Terminated
)

func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Noticed:
		return "noticed"
	default:
		return "terminated"
	}
}

// GPU is one device slot of an instance.
type GPU struct {
	// ID is globally unique across the simulation.
	ID int64
	// Slot is the device index within the instance.
	Slot int
	// Inst is the owning instance.
	Inst *Instance
}

// Instance is one cloud VM with GPUs.
type Instance struct {
	ID       int64
	Kind     Kind
	State    State
	GPUs     []*GPU
	Launched float64 // when the request was placed
	ReadyAt  float64 // when it became Running (valid once Running)
	// Deadline is the termination time once Noticed.
	Deadline float64
	// Type is the instance class (zero value = legacy homogeneous
	// baseline: speed and memory multipliers of 1).
	Type InstanceType
}

// GPUSpeed returns the per-GPU speed multiplier of the instance's type,
// defaulting to the baseline 1.0 for instances built without a type.
func (i *Instance) GPUSpeed() float64 {
	if i.Type.Speed <= 0 {
		return 1
	}
	return i.Type.Speed
}

// MemScale returns the memory multiplier of the instance's type (1.0 when
// untyped).
func (i *Instance) MemScale() float64 {
	if i.Type.MemScale <= 0 {
		return 1
	}
	return i.Type.MemScale
}

// Alive reports whether the instance still has usable GPUs (Running or in
// its grace period).
func (i *Instance) Alive() bool { return i.State == Running || i.State == Noticed }

func (i *Instance) String() string {
	return fmt.Sprintf("inst%d(%s,%s)", i.ID, i.Kind, i.State)
}

// InstanceType describes one class of instance in a (possibly
// heterogeneous) fleet: its GPU count and the per-GPU speed and memory
// multipliers relative to the baseline T4 testbed.
type InstanceType struct {
	// Name identifies the type, e.g. "g4dn" or "g5-fast".
	Name string
	// GPUs is the device count per instance of this type.
	GPUs int
	// Speed is the per-GPU compute/bandwidth multiplier relative to the
	// baseline (1.0 = T4): pipeline iteration time scales by the slowest
	// member GPU's 1/Speed.
	Speed float64
	// MemScale multiplies memory-dependent budgets (the migration-buffer
	// cap U_max) for instances of this type.
	MemScale float64
	// SpotUSDPerHour / OnDemandUSDPerHour are this type's prices.
	SpotUSDPerHour     float64
	OnDemandUSDPerHour float64
}

// Validate checks one instance type.
func (t InstanceType) Validate() error {
	switch {
	case t.Name == "":
		return fmt.Errorf("cloud: instance type with empty name")
	case t.GPUs <= 0:
		return fmt.Errorf("cloud: type %q: GPUs = %d", t.Name, t.GPUs)
	case t.Speed <= 0:
		return fmt.Errorf("cloud: type %q: speed multiplier %v", t.Name, t.Speed)
	case t.MemScale <= 0:
		return fmt.Errorf("cloud: type %q: memory multiplier %v", t.Name, t.MemScale)
	case t.SpotUSDPerHour < 0 || t.OnDemandUSDPerHour < 0:
		return fmt.Errorf("cloud: type %q: negative price", t.Name)
	}
	return nil
}

// Params configures the simulated provider.
type Params struct {
	GPUsPerInstance int
	// GracePeriod is the notice-to-termination window for spot instances.
	GracePeriod float64
	// AcquireDelay is request-to-Running provisioning time.
	AcquireDelay float64
	// SpotUSDPerHour / OnDemandUSDPerHour are instance prices (the paper
	// quotes 1.9 vs 3.9 USD/h for g4dn.12xlarge).
	SpotUSDPerHour     float64
	OnDemandUSDPerHour float64
	// Seed drives the provider's internal choices (which instance to
	// preempt).
	Seed int64
	// Types, when non-empty, makes the fleet heterogeneous: spot launches
	// cycle through the types in order (deterministically), while
	// on-demand allocations use Types[0]. Empty means one homogeneous
	// implicit type derived from the legacy scalar fields above.
	Types []InstanceType
	// Market, when non-nil, supplies per-type spot price curves: spot
	// instances of a type with a curve bill by integrating that curve
	// piecewise over their lifetime instead of freezing the flat
	// SpotUSDPerHour at readiness. Types without a curve, and all
	// on-demand instances (their price is contractually stable), keep the
	// flat path — which therefore stays bit-identical when no market is
	// configured.
	Market *market.Market
}

// TypeList returns the fleet's instance types: Types when set, otherwise
// the single implicit type encoded by the legacy scalar fields.
func (p Params) TypeList() []InstanceType {
	if len(p.Types) > 0 {
		return p.Types
	}
	return []InstanceType{{
		Name:               "default",
		GPUs:               p.GPUsPerInstance,
		Speed:              1,
		MemScale:           1,
		SpotUSDPerHour:     p.SpotUSDPerHour,
		OnDemandUSDPerHour: p.OnDemandUSDPerHour,
	}}
}

// Heterogeneous reports whether the fleet mixes instance types.
func (p Params) Heterogeneous() bool { return len(p.Types) > 1 }

// Validate checks the provider configuration, including the instance-type
// table: a zero grace period (instant reclamation) is legal, a negative one
// is not; acquisition delays may not be negative; every declared type must
// be well-formed and uniquely named.
func (p Params) Validate() error {
	switch {
	case p.GPUsPerInstance <= 0:
		return fmt.Errorf("cloud: GPUsPerInstance = %d", p.GPUsPerInstance)
	case p.GracePeriod < 0:
		return fmt.Errorf("cloud: negative grace period %v", p.GracePeriod)
	case p.AcquireDelay < 0:
		return fmt.Errorf("cloud: negative acquire delay %v", p.AcquireDelay)
	}
	seen := make(map[string]bool, len(p.Types))
	for _, t := range p.Types {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.Name] {
			return fmt.Errorf("cloud: duplicate instance type %q", t.Name)
		}
		seen[t.Name] = true
	}
	if p.Market != nil {
		for name, c := range p.Market.Curves {
			if err := c.Validate(); err != nil {
				return fmt.Errorf("cloud: market curve %q: %v", name, err)
			}
		}
	}
	return nil
}

// DefaultParams mirrors the paper's testbed.
func DefaultParams() Params {
	return Params{
		GPUsPerInstance:    4,
		GracePeriod:        30,
		AcquireDelay:       120,
		SpotUSDPerHour:     1.9,
		OnDemandUSDPerHour: 3.9,
		Seed:               1,
	}
}

// Listener receives the cloud's ahead-of-time notifications — the same
// interface the real provider exposes to SpotServe's instance manager.
type Listener interface {
	// InstanceReady fires when a Pending instance becomes Running.
	InstanceReady(inst *Instance)
	// PreemptionNotice fires when a spot instance's grace period starts;
	// the instance terminates at deadline.
	PreemptionNotice(inst *Instance, deadline float64)
	// InstanceTerminated fires when an instance is reclaimed or released.
	InstanceTerminated(inst *Instance)
}

// Cloud is the simulated provider.
type Cloud struct {
	sim      *sim.Simulator
	params   Params
	listener Listener
	rng      *rand.Rand
	meter    *metrics.CostMeter

	nextInstID int64
	nextGPUID  int64
	instances  map[int64]*Instance
	// spotLaunches counts spot launches so heterogeneous fleets cycle
	// through the type table deterministically.
	spotLaunches int
	// aliveCache holds the sorted Alive() result between membership
	// changes — the control plane reads the alive set several times per
	// event.
	aliveCache []*Instance
}

// New builds a provider bound to the simulator. The listener may be set
// later with SetListener but must be non-nil before any event fires.
func New(s *sim.Simulator, p Params, l Listener) *Cloud {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Cloud{
		sim:       s,
		params:    p,
		listener:  l,
		rng:       rand.New(rand.NewSource(p.Seed)),
		meter:     metrics.NewCostMeter(s.Now),
		instances: make(map[int64]*Instance),
	}
}

// SetListener installs the notification sink.
func (c *Cloud) SetListener(l Listener) { c.listener = l }

// Params returns the provider configuration.
func (c *Cloud) Params() Params { return c.params }

// CostUSD returns the total accrued instance cost.
func (c *Cloud) CostUSD() float64 { return c.meter.TotalUSD() }

// SpendUSDPerHour returns the fleet's instantaneous billing rate: the sum
// over alive instances of their current price — the market curve's price
// at now for spot types the configured market prices, the flat type price
// otherwise. The cost-aware autoscaling policies read this to shed
// capacity when spot prices spike.
func (c *Cloud) SpendUSDPerHour() float64 {
	now := c.sim.Now()
	rate := 0.0
	for _, inst := range c.Alive() {
		if curve, ok := c.spotCurve(inst); ok {
			rate += curve.PriceAt(now)
		} else {
			rate += priceOf(inst)
		}
	}
	return rate
}

// newInstance allocates the instance and GPU records for one type.
func (c *Cloud) newInstance(kind Kind, typ InstanceType) *Instance {
	inst := &Instance{
		ID:       c.nextInstID,
		Kind:     kind,
		State:    Pending,
		Launched: c.sim.Now(),
		Type:     typ,
	}
	c.nextInstID++
	for s := 0; s < typ.GPUs; s++ {
		inst.GPUs = append(inst.GPUs, &GPU{ID: c.nextGPUID, Slot: s, Inst: inst})
		c.nextGPUID++
	}
	c.instances[inst.ID] = inst
	return inst
}

// newSpotInstance creates one spot instance of the rotation's next type.
// The round-robin cursor advances here — atomically with the instance
// record actually coming into existence — so a launch path that peeks the
// type but then fails or rejects the launch can never consume a rotation
// slot and shift every subsequent type assignment (the peek itself is
// side-effect-free via spotTypeAt).
func (c *Cloud) newSpotInstance() *Instance {
	inst := c.newInstance(Spot, c.spotTypeAt(c.spotLaunches))
	c.spotLaunches++
	return inst
}

// spotTypeAt returns the type the i-th spot launch draws, cycling through
// the fleet's type table so heterogeneous trace replays interleave types
// deterministically. Pure: it never advances the rotation.
func (c *Cloud) spotTypeAt(i int) InstanceType {
	types := c.params.TypeList()
	return types[i%len(types)]
}

func priceOf(inst *Instance) float64 {
	if inst.Kind == Spot {
		return inst.Type.SpotUSDPerHour
	}
	return inst.Type.OnDemandUSDPerHour
}

// spotCurve returns the market price curve billing inst, if any: spot
// instances of a type the configured market prices.
func (c *Cloud) spotCurve(inst *Instance) (market.Curve, bool) {
	if c.params.Market == nil || inst.Kind != Spot {
		return market.Curve{}, false
	}
	return c.params.Market.CurveFor(inst.Type.Name)
}

func (c *Cloud) makeReady(inst *Instance) {
	if inst.State != Pending {
		return // preempted while provisioning
	}
	inst.State = Running
	inst.ReadyAt = c.sim.Now()
	c.aliveCache = nil
	if curve, ok := c.spotCurve(inst); ok {
		c.meter.StartVariable(inst.ID, curve.Integrate)
	} else {
		c.meter.Start(inst.ID, priceOf(inst))
	}
	c.listener.InstanceReady(inst)
}

func (c *Cloud) terminate(inst *Instance) {
	if inst.State == Terminated {
		return
	}
	inst.State = Terminated
	c.aliveCache = nil
	c.meter.Stop(inst.ID)
	c.listener.InstanceTerminated(inst)
}

// launchSpot creates spot instances that become Running after delay.
func (c *Cloud) launchSpot(n int, delay float64) {
	for i := 0; i < n; i++ {
		inst := c.newSpotInstance()
		if delay <= 0 {
			c.makeReady(inst)
		} else {
			c.sim.After(delay, func() { c.makeReady(inst) })
		}
	}
}

// preemptSpot issues preemption notices to n random live spot instances.
func (c *Cloud) preemptSpot(n int) {
	victims := c.liveSpot()
	c.rng.Shuffle(len(victims), func(i, j int) {
		victims[i], victims[j] = victims[j], victims[i]
	})
	if n > len(victims) {
		n = len(victims)
	}
	for _, inst := range victims[:n] {
		inst := inst
		if inst.State == Pending {
			// Reclaimed before it ever provisioned.
			c.terminate(inst)
			continue
		}
		inst.State = Noticed
		inst.Deadline = c.sim.Now() + c.params.GracePeriod
		c.listener.PreemptionNotice(inst, inst.Deadline)
		c.sim.At(inst.Deadline, func() { c.terminate(inst) })
	}
}

// liveSpot returns non-terminated spot instances in deterministic ID order
// (excluding ones already under notice).
func (c *Cloud) liveSpot() []*Instance {
	var out []*Instance
	for _, inst := range c.instances {
		if inst.Kind == Spot && (inst.State == Running || inst.State == Pending) {
			out = append(out, inst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ReplayTrace schedules the spot fleet to follow tr: the initial count is
// provisioned Running at t=0 (the system starts initialized, as in §6.3),
// later increases arrive after the acquisition delay, and decreases trigger
// grace-period preemption notices at the event time.
func (c *Cloud) ReplayTrace(tr trace.Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	prev := 0
	for idx, ev := range tr.Events {
		ev := ev
		delta := ev.Count - prev
		prev = ev.Count
		if delta == 0 {
			continue
		}
		if idx == 0 {
			// Initial fleet: ready immediately at t=0.
			c.sim.At(0, func() { c.launchSpot(delta, 0) })
			continue
		}
		d := delta
		c.sim.At(ev.At, func() {
			if d > 0 {
				c.launchSpot(d, c.params.AcquireDelay)
			} else {
				c.preemptSpot(-d)
			}
		})
	}
	return nil
}

// Prealloc provisions n instances of the given kind, Running immediately —
// used to start experiments from an initialized fleet (e.g. the
// on-demand-only baseline of Figure 7).
func (c *Cloud) Prealloc(n int, kind Kind) []*Instance {
	var out []*Instance
	for i := 0; i < n; i++ {
		var inst *Instance
		if kind == Spot {
			inst = c.newSpotInstance()
		} else {
			inst = c.newInstance(kind, c.params.TypeList()[0])
		}
		c.makeReady(inst)
		out = append(out, inst)
	}
	return out
}

// AllocOnDemand requests n on-demand instances of the fleet's primary
// type; they become Running after the acquisition delay. The created
// (Pending) instances are returned.
func (c *Cloud) AllocOnDemand(n int) []*Instance {
	var out []*Instance
	for i := 0; i < n; i++ {
		out = append(out, c.allocOnDemandTyped(c.params.TypeList()[0]))
	}
	return out
}

func (c *Cloud) allocOnDemandTyped(typ InstanceType) *Instance {
	inst := c.newInstance(OnDemand, typ)
	c.sim.After(c.params.AcquireDelay, func() { c.makeReady(inst) })
	return inst
}

// AllocOnDemandGPUs requests on-demand capacity covering at least `gpus`
// devices. The bulk of the deficit is covered by primary-type instances;
// the remainder falls back to the non-primary type that wastes the fewest
// devices (ties: cheapest on-demand $/GPU, then table order) — so a
// 2-device deficit on a {4-GPU, 2-GPU} fleet allocates one small instance
// instead of rounding up to a second large one. On single-type fleets the
// result is exactly ceil(gpus/GPUsPerType) primary instances, matching the
// historical allocator. The created (Pending) instances are returned.
func (c *Cloud) AllocOnDemandGPUs(gpus int) []*Instance {
	types := c.params.TypeList()
	primary := types[0]
	var out []*Instance
	for gpus >= primary.GPUs {
		out = append(out, c.allocOnDemandTyped(primary))
		gpus -= primary.GPUs
	}
	if gpus > 0 {
		best := primary
		for _, t := range types[1:] {
			if t.GPUs < gpus {
				continue // cannot singly cover the remainder
			}
			switch {
			case t.GPUs < best.GPUs, // less waste
				t.GPUs == best.GPUs && t.OnDemandUSDPerHour/float64(t.GPUs) <
					best.OnDemandUSDPerHour/float64(best.GPUs): // cheaper per device
				best = t
			}
		}
		out = append(out, c.allocOnDemandTyped(best))
	}
	return out
}

// Release returns an instance to the provider (Algorithm 1 line 10 frees
// over-provisioned instances, on-demand first). Releasing a spot instance
// simply stops using (and paying for) it.
func (c *Cloud) Release(inst *Instance) {
	c.terminate(inst)
}

// Alive returns all Running-or-Noticed instances in ID order. The slice is
// cached between membership changes (state transitions invalidate it);
// callers must not mutate it.
func (c *Cloud) Alive() []*Instance {
	if c.aliveCache != nil {
		return c.aliveCache
	}
	out := make([]*Instance, 0, len(c.instances))
	for _, inst := range c.instances {
		if inst.Alive() {
			out = append(out, inst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	c.aliveCache = out
	return out
}

// AliveCount returns len(Alive()) split by kind.
func (c *Cloud) AliveCount() (spot, onDemand int) {
	for _, inst := range c.instances {
		if !inst.Alive() {
			continue
		}
		if inst.Kind == Spot {
			spot++
		} else {
			onDemand++
		}
	}
	return
}

// GPUCount sums the GPUs of non-terminated (Pending, Running or Noticed)
// instances, skipping instance IDs for which skip returns true (nil =
// count all). The device-denominated fleet measure the instance manager
// uses when instance types carry different GPU counts; it allocates
// nothing because it runs on every fleet decision.
func (c *Cloud) GPUCount(skip func(id int64) bool) int {
	n := 0
	for _, inst := range c.instances {
		if inst.State == Terminated || (skip != nil && skip(inst.ID)) {
			continue
		}
		n += len(inst.GPUs)
	}
	return n
}

// PendingCount returns the number of provisioning instances by kind.
func (c *Cloud) PendingCount() (spot, onDemand int) {
	for _, inst := range c.instances {
		if inst.State != Pending {
			continue
		}
		if inst.Kind == Spot {
			spot++
		} else {
			onDemand++
		}
	}
	return
}

// UsableGPUs returns the GPUs of instances that are Running or Noticed
// (grace period still usable), in deterministic order.
func (c *Cloud) UsableGPUs() []*GPU {
	var out []*GPU
	for _, inst := range c.Alive() {
		out = append(out, inst.GPUs...)
	}
	return out
}
