package cloud

import (
	"math"
	"testing"

	"spotserve/internal/sim"
	"spotserve/internal/trace"
)

// recorder captures listener callbacks with their times.
type recorder struct {
	s          *sim.Simulator
	ready      []ev
	notices    []ev
	terminated []ev
}

type ev struct {
	at       float64
	id       int64
	deadline float64
}

func (r *recorder) InstanceReady(i *Instance) {
	r.ready = append(r.ready, ev{at: r.s.Now(), id: i.ID})
}
func (r *recorder) PreemptionNotice(i *Instance, deadline float64) {
	r.notices = append(r.notices, ev{at: r.s.Now(), id: i.ID, deadline: deadline})
}
func (r *recorder) InstanceTerminated(i *Instance) {
	r.terminated = append(r.terminated, ev{at: r.s.Now(), id: i.ID})
}

func newCloud(t *testing.T) (*sim.Simulator, *Cloud, *recorder) {
	t.Helper()
	s := sim.New()
	r := &recorder{s: s}
	c := New(s, DefaultParams(), r)
	return s, c, r
}

func TestInitialFleetReadyAtZero(t *testing.T) {
	s, c, r := newCloud(t)
	tr := trace.Trace{Name: "t", Horizon: 100, Events: []trace.Event{{At: 0, Count: 3}}}
	if err := c.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	s.Run(1)
	if len(r.ready) != 3 {
		t.Fatalf("ready = %d, want 3", len(r.ready))
	}
	for _, e := range r.ready {
		if e.at != 0 {
			t.Fatalf("initial instance ready at %v, want 0", e.at)
		}
	}
	spot, od := c.AliveCount()
	if spot != 3 || od != 0 {
		t.Fatalf("alive = %d/%d", spot, od)
	}
	if got := len(c.UsableGPUs()); got != 12 {
		t.Fatalf("usable GPUs = %d, want 12", got)
	}
}

func TestAcquisitionDelay(t *testing.T) {
	s, c, r := newCloud(t)
	tr := trace.Trace{Name: "t", Horizon: 1000, Events: []trace.Event{
		{At: 0, Count: 1}, {At: 100, Count: 3},
	}}
	if err := c.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	s.Run(219)
	if len(r.ready) != 1 {
		t.Fatalf("ready before delay = %d, want 1", len(r.ready))
	}
	s.Run(221)
	if len(r.ready) != 3 {
		t.Fatalf("ready after delay = %d, want 3", len(r.ready))
	}
	if r.ready[1].at != 220 { // 100 + 120s AcquireDelay
		t.Fatalf("acquired instance ready at %v, want 220", r.ready[1].at)
	}
}

func TestPreemptionNoticeAndGrace(t *testing.T) {
	s, c, r := newCloud(t)
	tr := trace.Trace{Name: "t", Horizon: 1000, Events: []trace.Event{
		{At: 0, Count: 4}, {At: 50, Count: 2},
	}}
	if err := c.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	s.Run(49)
	if len(r.notices) != 0 {
		t.Fatal("premature notices")
	}
	s.Run(79)
	if len(r.notices) != 2 {
		t.Fatalf("notices = %d, want 2", len(r.notices))
	}
	for _, n := range r.notices {
		if n.at != 50 || n.deadline != 80 {
			t.Fatalf("notice at %v deadline %v, want 50/80", n.at, n.deadline)
		}
	}
	if len(r.terminated) != 0 {
		t.Fatal("terminated before grace expired")
	}
	// Noticed instances remain usable through the grace period.
	spot, _ := c.AliveCount()
	if spot != 4 {
		t.Fatalf("alive during grace = %d, want 4", spot)
	}
	s.Run(81)
	if len(r.terminated) != 2 {
		t.Fatalf("terminated = %d, want 2", len(r.terminated))
	}
	spot, _ = c.AliveCount()
	if spot != 2 {
		t.Fatalf("alive after grace = %d, want 2", spot)
	}
}

func TestPreemptPendingInstance(t *testing.T) {
	s, c, r := newCloud(t)
	// +2 at t=10 (ready at 130), but -2 at t=50 while still pending.
	tr := trace.Trace{Name: "t", Horizon: 1000, Events: []trace.Event{
		{At: 0, Count: 0}, {At: 10, Count: 2}, {At: 50, Count: 0},
	}}
	if err := c.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	s.Run(500)
	if len(r.ready) != 0 {
		t.Fatalf("pending instances became ready: %v", r.ready)
	}
	if len(r.terminated) != 2 {
		t.Fatalf("terminated = %d, want 2", len(r.terminated))
	}
	// Reclaiming a pending instance needs no grace notice.
	if len(r.notices) != 0 {
		t.Fatalf("notices for pending instances: %v", r.notices)
	}
}

func TestOnDemandAllocRelease(t *testing.T) {
	s, c, r := newCloud(t)
	var insts []*Instance
	s.At(0, func() { insts = c.AllocOnDemand(2) })
	s.Run(300)
	if len(r.ready) != 2 {
		t.Fatalf("ready = %d", len(r.ready))
	}
	_, od := c.AliveCount()
	if od != 2 {
		t.Fatalf("on-demand alive = %d", od)
	}
	s.At(300, func() { c.Release(insts[0]) })
	s.Run(301)
	_, od = c.AliveCount()
	if od != 1 {
		t.Fatalf("on-demand after release = %d", od)
	}
	if len(r.terminated) != 1 {
		t.Fatalf("terminated = %d", len(r.terminated))
	}
}

func TestBilling(t *testing.T) {
	s, c, _ := newCloud(t)
	// One spot instance running 0→3600 s at 1.9 USD/h.
	tr := trace.Trace{Name: "t", Horizon: 7200, Events: []trace.Event{
		{At: 0, Count: 1}, {At: 3570, Count: 0}, // notice at 3570, dead at 3600
	}}
	if err := c.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	s.Run(7200)
	if got := c.CostUSD(); math.Abs(got-1.9) > 1e-6 {
		t.Fatalf("cost = %v, want 1.9", got)
	}
}

func TestBillingOnDemandDearer(t *testing.T) {
	s1 := sim.New()
	c1 := New(s1, DefaultParams(), &recorder{s: s1})
	s1.At(0, func() { c1.AllocOnDemand(1) })
	s1.Run(3720) // ready at 120, runs 3600 s
	spotCost := func() float64 {
		s2 := sim.New()
		c2 := New(s2, DefaultParams(), &recorder{s: s2})
		tr := trace.Trace{Name: "t", Horizon: 7200, Events: []trace.Event{{At: 0, Count: 1}}}
		if err := c2.ReplayTrace(tr); err != nil {
			t.Fatal(err)
		}
		s2.Run(3600)
		return c2.CostUSD()
	}()
	if c1.CostUSD() <= spotCost {
		t.Fatalf("on-demand %v should cost more than spot %v", c1.CostUSD(), spotCost)
	}
}

func TestDeterministicPreemptionChoice(t *testing.T) {
	run := func() []int64 {
		s := sim.New()
		r := &recorder{s: s}
		c := New(s, DefaultParams(), r)
		tr := trace.Trace{Name: "t", Horizon: 1000, Events: []trace.Event{
			{At: 0, Count: 6}, {At: 10, Count: 3},
		}}
		if err := c.ReplayTrace(tr); err != nil {
			t.Fatal(err)
		}
		s.Run(1000)
		var ids []int64
		for _, n := range r.notices {
			ids = append(ids, n.id)
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("notices = %d/%d, want 3", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("preemption choice not deterministic")
		}
	}
}

func TestTraceCountTracksAlive(t *testing.T) {
	s, c, _ := newCloud(t)
	tr := trace.BS()
	if err := c.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	// After every event settles (past acquire delay and grace), the alive
	// count matches the trace count.
	for _, probe := range []float64{55, 500, 1100} {
		probe := probe
		s.At(probe+150, func() {
			spot, _ := c.AliveCount()
			pend, _ := c.PendingCount()
			want := tr.CountAt(probe + 150)
			if spot+pend < want-1 || spot > want+1 {
				t.Errorf("t=%v: alive=%d pending=%d trace=%d", probe+150, spot, pend, want)
			}
		})
	}
	s.Run(1200)
}

func TestInstanceStateStrings(t *testing.T) {
	if Pending.String() != "pending" || Running.String() != "running" ||
		Noticed.String() != "noticed" || Terminated.String() != "terminated" {
		t.Fatal("state strings wrong")
	}
	if Spot.String() != "spot" || OnDemand.String() != "on-demand" {
		t.Fatal("kind strings wrong")
	}
}

func TestPrealloc(t *testing.T) {
	s, c, r := newCloud(t)
	s.At(0, func() { c.Prealloc(3, OnDemand) })
	s.Run(1)
	if len(r.ready) != 3 {
		t.Fatalf("ready = %d, want 3 (Prealloc is immediate)", len(r.ready))
	}
	_, od := c.AliveCount()
	if od != 3 {
		t.Fatalf("on-demand alive = %d", od)
	}
	// Billed at the on-demand rate from t=0.
	s.Run(3600)
	want := 3 * 3.9
	if got := c.CostUSD(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("cost = %v, want %v", got, want)
	}
}

func TestReleaseNoticedInstanceStopsBilling(t *testing.T) {
	s, c, r := newCloud(t)
	tr := trace.Trace{Name: "t", Horizon: 1000, Events: []trace.Event{
		{At: 0, Count: 2}, {At: 100, Count: 1},
	}}
	if err := c.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	s.Run(104) // notice issued at t=100
	if len(r.notices) != 1 {
		t.Fatalf("notices = %d", len(r.notices))
	}
	// Releasing the noticed instance early ends its bill at t=105, not 130.
	s.At(105, func() {
		var noticed *Instance
		for _, inst := range c.Alive() {
			if inst.State == Noticed {
				noticed = inst
			}
		}
		if noticed == nil {
			t.Fatal("no noticed instance")
		}
		c.Release(noticed)
	})
	s.Run(1000)
	// Instance 0 or 1 ran 0→1000 (kept), the other 0→105 (released).
	want := (1000 + 105) / 3600.0 * 1.9
	if got := c.CostUSD(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("cost = %v, want %v", got, want)
	}
	// The grace-deadline termination event must not double-fire.
	if len(r.terminated) != 1 {
		t.Fatalf("terminated = %d, want 1", len(r.terminated))
	}
}

func TestUsableGPUsDeterministicOrder(t *testing.T) {
	s, c, _ := newCloud(t)
	tr := trace.Trace{Name: "t", Horizon: 100, Events: []trace.Event{{At: 0, Count: 3}}}
	if err := c.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	s.Run(1)
	g := c.UsableGPUs()
	for i := 1; i < len(g); i++ {
		if g[i].ID <= g[i-1].ID {
			t.Fatal("GPUs not in ID order")
		}
	}
	if len(g) != 12 {
		t.Fatalf("gpus = %d", len(g))
	}
}

// nopListener ignores every cloud notification.
type nopListener struct{}

func (nopListener) InstanceReady(*Instance)             {}
func (nopListener) PreemptionNotice(*Instance, float64) {}
func (nopListener) InstanceTerminated(*Instance)        {}

// heteroAllocParams builds a two-type fleet for allocator tests.
func heteroAllocParams() Params {
	p := DefaultParams()
	p.Types = []InstanceType{
		{Name: "big", GPUs: 4, Speed: 1, MemScale: 1, SpotUSDPerHour: 1.9, OnDemandUSDPerHour: 3.9},
		{Name: "half", GPUs: 2, Speed: 1, MemScale: 1, SpotUSDPerHour: 1.0, OnDemandUSDPerHour: 2.0},
	}
	return p
}

// TestAllocOnDemandGPUsTypedFallback pins the non-primary-type on-demand
// fallback: the bulk of a GPU deficit is covered by primary instances and
// the tail by the least-wasteful smaller type.
func TestAllocOnDemandGPUsTypedFallback(t *testing.T) {
	s := sim.New()
	c := New(s, heteroAllocParams(), nopListener{})

	insts := c.AllocOnDemandGPUs(6)
	if len(insts) != 2 {
		t.Fatalf("deficit 6 allocated %d instances, want 2", len(insts))
	}
	if insts[0].Type.Name != "big" || insts[1].Type.Name != "half" {
		t.Fatalf("deficit 6 allocated %s+%s, want big+half", insts[0].Type.Name, insts[1].Type.Name)
	}
	if got := len(insts[0].GPUs) + len(insts[1].GPUs); got != 6 {
		t.Fatalf("deficit 6 covered with %d GPUs (want exactly 6, no waste)", got)
	}

	// Remainder larger than every non-primary type falls back to primary.
	insts = c.AllocOnDemandGPUs(3)
	if len(insts) != 1 || insts[0].Type.Name != "big" {
		t.Fatalf("deficit 3 = %v, want one big", insts)
	}

	// Exact primary multiples never touch the fallback.
	insts = c.AllocOnDemandGPUs(8)
	if len(insts) != 2 || insts[0].Type.Name != "big" || insts[1].Type.Name != "big" {
		t.Fatalf("deficit 8 = %v, want two big", insts)
	}
}

// TestAllocOnDemandGPUsHomogeneous pins the single-type fleet to the
// historical ceil(deficit/GPUsPerInstance) behavior.
func TestAllocOnDemandGPUsHomogeneous(t *testing.T) {
	s := sim.New()
	c := New(s, DefaultParams(), nopListener{})
	for deficit, want := range map[int]int{1: 1, 4: 1, 5: 2, 8: 2, 9: 3} {
		insts := c.AllocOnDemandGPUs(deficit)
		if len(insts) != want {
			t.Fatalf("deficit %d allocated %d instances, want %d", deficit, len(insts), want)
		}
		for _, inst := range insts {
			if inst.Kind != OnDemand || len(inst.GPUs) != 4 {
				t.Fatalf("deficit %d: unexpected instance %v", deficit, inst)
			}
		}
	}
}
