package cloud

import (
	"math"
	"testing"

	"spotserve/internal/market"
	"spotserve/internal/sim"
	"spotserve/internal/trace"
)

// staircase builds a price curve sampling the linear ramp a + b·t every h
// seconds — a curve whose piecewise-constant integral has the closed form
// h·(M·a + b·h·M(M−1)/2)/3600 over the first M whole steps.
func staircase(typeName string, a, b, h, horizon float64) market.Curve {
	c := market.Curve{Type: typeName, Horizon: horizon}
	for t := 0.0; t < horizon; t += h {
		c.Samples = append(c.Samples, market.Sample{At: t, USDPerHour: a + b*t})
	}
	return c
}

// TestMarketBillingIntegration is the acceptance gate for time-varying
// billing: with a market configured, the meter's piecewise integral over an
// instance's exact lifetime must match the closed-form sum of the sampled
// ramp — including an instance whose billing is cut mid-run by preemption.
func TestMarketBillingIntegration(t *testing.T) {
	const (
		a, b    = 2.0, 0.001 // price ramp: 2 $/h rising 3.6 $/h per simulated hour
		h       = 50.0       // sampling interval
		horizon = 2000.0
	)
	p := DefaultParams()
	p.Market = &market.Market{
		Process: "test-ramp",
		Curves:  map[string]market.Curve{"default": staircase("default", a, b, h, horizon)},
	}
	s := sim.New()
	c := New(s, p, &recorder{s: s})
	// One spot instance from t=0; the count drops at t=600, so it bills
	// until termination at 600 + grace (30).
	tr := trace.Trace{Name: "ramp", Horizon: horizon, Events: []trace.Event{
		{At: 0, Count: 1}, {At: 600, Count: 0},
	}}
	if err := c.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	s.Run(horizon)

	end := 600.0 + p.GracePeriod
	// Closed form: 12 whole 50 s steps cover [0, 600); the 13th step's
	// price bills for the 30 s grace tail.
	whole := 0.0
	steps := int(end / h) // 12 full steps, k = 0..11
	for k := 0; k < steps; k++ {
		whole += (a + b*float64(k)*h) * h
	}
	want := (whole + (a+b*float64(steps)*h)*(end-float64(steps)*h)) / 3600
	if got := c.CostUSD(); math.Abs(got-want) > 1e-12 {
		t.Errorf("market CostUSD = %v, want closed-form %v", got, want)
	}

	// The same fleet without a market bills the flat spot price — and the
	// two disagree, proving the curve path actually engaged.
	s2 := sim.New()
	c2 := New(s2, DefaultParams(), &recorder{s: s2})
	if err := c2.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	s2.Run(horizon)
	flat := end / 3600 * DefaultParams().SpotUSDPerHour
	if got := c2.CostUSD(); math.Abs(got-flat) > 1e-12 {
		t.Errorf("flat CostUSD = %v, want %v", got, flat)
	}
	if math.Abs(want-flat) < 1e-9 {
		t.Fatal("test curve accidentally matches the flat price — no discrimination")
	}
}

// TestMarketBillsOpenInstancesToNow checks still-running instances accrue
// curve-priced cost mid-run (TotalUSD prices open bills to now).
func TestMarketBillsOpenInstancesToNow(t *testing.T) {
	p := DefaultParams()
	p.Market = &market.Market{Curves: map[string]market.Curve{
		"default": {Type: "default", Horizon: 1000, Samples: []market.Sample{
			{At: 0, USDPerHour: 1.0}, {At: 100, USDPerHour: 7.0},
		}},
	}}
	s := sim.New()
	c := New(s, p, &recorder{s: s})
	c.Prealloc(1, Spot)
	s.Run(200)
	want := (100*1.0 + 100*7.0) / 3600
	if got := c.CostUSD(); math.Abs(got-want) > 1e-12 {
		t.Errorf("open-bill CostUSD = %v, want %v", got, want)
	}
	// On-demand instances ignore the market (their price is contractual).
	s3 := sim.New()
	c3 := New(s3, p, &recorder{s: s3})
	c3.Prealloc(1, OnDemand)
	s3.Run(200)
	wantOD := 200.0 / 3600 * p.OnDemandUSDPerHour
	if got := c3.CostUSD(); math.Abs(got-wantOD) > 1e-12 {
		t.Errorf("on-demand CostUSD = %v, want flat %v", got, wantOD)
	}
}

// heteroParams builds a two-type fleet for rotation tests.
func heteroParams() Params {
	p := DefaultParams()
	p.Types = []InstanceType{
		{Name: "A", GPUs: 4, Speed: 1, MemScale: 1, SpotUSDPerHour: 1, OnDemandUSDPerHour: 2},
		{Name: "B", GPUs: 4, Speed: 1, MemScale: 1, SpotUSDPerHour: 1, OnDemandUSDPerHour: 2},
	}
	return p
}

// TestSpotTypeRotationDeterministic pins the launch-path audit: the type
// rotation advances exactly once per spot instance actually created —
// peeking the next type, zero-count launches, and on-demand allocations
// never consume a slot — so the assigned type sequence is a pure function
// of the launch order.
func TestSpotTypeRotationDeterministic(t *testing.T) {
	s := sim.New()
	c := New(s, heteroParams(), &recorder{s: s})

	// Peeking is side-effect-free.
	if c.spotTypeAt(c.spotLaunches).Name != "A" || c.spotTypeAt(c.spotLaunches).Name != "A" {
		t.Fatal("peeking the rotation advanced it")
	}
	// Paths that launch nothing consume nothing.
	c.launchSpot(0, 0)
	c.Prealloc(0, Spot)
	c.AllocOnDemand(2) // on-demand never touches the spot rotation
	if c.spotLaunches != 0 {
		t.Fatalf("spotLaunches = %d after non-launches, want 0", c.spotLaunches)
	}
	// Mixed launch paths interleave types in strict creation order.
	c.Prealloc(3, Spot)
	c.launchSpot(2, 0)
	var got []string
	for _, inst := range c.Alive() {
		if inst.Kind == Spot {
			got = append(got, inst.Type.Name)
		}
	}
	want := []string{"A", "B", "A", "B", "A"}
	if len(got) != len(want) {
		t.Fatalf("spot fleet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation order %v, want %v", got, want)
		}
	}
}
