package cloud

// FleetView is the observation an Autoscaler receives at each scaling
// decision point: the fleet state split by market and lifecycle, the
// serving system's own fleet proposal (Algorithm 1's #Instances(C) plus
// reserve pool), and the workload pressure signals a policy may react to.
type FleetView struct {
	// Now is the virtual time of the decision.
	Now float64
	// SpotRunning / SpotPending / OnDemandRunning / OnDemandPending count
	// instances by market and lifecycle state. Running includes instances
	// under preemption notice (still usable in their grace period).
	SpotRunning, SpotPending         int
	OnDemandRunning, OnDemandPending int
	// Dying counts instances currently under a preemption notice.
	Dying int
	// QueueDepth is the serving system's request backlog.
	QueueDepth int
	// Want is the fleet-size target the configuration optimizer itself
	// proposed (the fixed-target policy returns exactly this).
	Want int
	// RecentPreemptions counts preemption notices observed within the
	// policy look-back window (120 s).
	RecentPreemptions int
}

// Autoscaler decides the fleet-size target consulted on preemption/ready
// events and at periodic workload checks. Implementations must be
// deterministic: any internal randomness comes from an explicit seed.
//
// The returned target is a total instance count; the instance manager
// grows toward it with on-demand allocations (when allowed) and shrinks by
// releasing surplus on-demand instances first, exactly as Algorithm 1
// lines 8/10 do for the fixed target.
type Autoscaler interface {
	// Name identifies the policy for fingerprints and catalogs.
	Name() string
	// Target returns the desired total instance count for the view.
	Target(v FleetView) int
}
