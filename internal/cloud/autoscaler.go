package cloud

// FleetView is the observation an Autoscaler receives at each scaling
// decision point: the fleet state split by market and lifecycle, the
// serving system's own fleet proposal (Algorithm 1's #Instances(C) plus
// reserve pool), and the workload pressure signals a policy may react to.
type FleetView struct {
	// Now is the virtual time of the decision.
	Now float64
	// SpotRunning / SpotPending / OnDemandRunning / OnDemandPending count
	// instances by market and lifecycle state. Running includes instances
	// under preemption notice (still usable in their grace period).
	SpotRunning, SpotPending         int
	OnDemandRunning, OnDemandPending int
	// Dying counts instances currently under a preemption notice.
	Dying int
	// QueueDepth is the serving system's request backlog.
	QueueDepth int
	// Want is the fleet-size target the configuration optimizer itself
	// proposed (the fixed-target policy returns exactly this).
	Want int
	// RecentPreemptions counts preemption notices observed within the
	// policy look-back window (120 s).
	RecentPreemptions int

	// Alpha is the server's current required-rate estimate α_t (requests
	// per second, backlog pressure included).
	Alpha float64
	// Phi is the optimizer's throughput estimate φ(C) for the currently
	// installed configuration (0 when nothing is deployed), and
	// PhiPerInstance is φ(C) divided by the instances the configuration
	// occupies — the marginal throughput an SLO policy buys per added
	// instance.
	Phi, PhiPerInstance float64
	// RecentP99 is the p99 end-to-end latency over requests completed in
	// the look-back window (0 until anything completes).
	RecentP99 float64
	// SpendUSDPerHour is the fleet's instantaneous billing rate, priced
	// from the spot market's curves when one is configured (flat type
	// prices otherwise) — the signal budget-capped policies shed against.
	SpendUSDPerHour float64
}

// SignalConsumer marks policies that read FleetView's workload/market
// signal fields (Alpha, Phi, PhiPerInstance, RecentP99, SpendUSDPerHour).
// The server only computes those signals — and only maintains the latency
// window behind RecentP99 — when the configured policy declares it needs
// them; counters-only policies keep the historical cheap path.
type SignalConsumer interface {
	ConsumesSignals()
}

// Autoscaler decides the fleet-size target consulted on preemption/ready
// events and at periodic workload checks. Implementations must be
// deterministic: any internal randomness comes from an explicit seed.
//
// The returned target is a total instance count; the instance manager
// grows toward it with on-demand allocations (when allowed) and shrinks by
// releasing surplus on-demand instances first, exactly as Algorithm 1
// lines 8/10 do for the fixed target.
type Autoscaler interface {
	// Name identifies the policy for fingerprints and catalogs.
	Name() string
	// Target returns the desired total instance count for the view.
	Target(v FleetView) int
}
