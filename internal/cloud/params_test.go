package cloud

import (
	"strings"
	"testing"

	"spotserve/internal/sim"
)

// TestParamsValidateEdgeCases covers the boundary semantics: a zero grace
// period (instant reclamation) is legal, negative time parameters and
// malformed instance-type tables are not.
func TestParamsValidateEdgeCases(t *testing.T) {
	ok := func(mut func(*Params)) Params {
		p := DefaultParams()
		mut(&p)
		return p
	}
	valid := []struct {
		name string
		p    Params
	}{
		{"defaults", DefaultParams()},
		{"zero grace period", ok(func(p *Params) { p.GracePeriod = 0 })},
		{"zero acquire delay", ok(func(p *Params) { p.AcquireDelay = 0 })},
		{"typed fleet", ok(func(p *Params) {
			p.Types = []InstanceType{
				{Name: "a", GPUs: 4, Speed: 1, MemScale: 1, SpotUSDPerHour: 1, OnDemandUSDPerHour: 2},
				{Name: "b", GPUs: 2, Speed: 1.5, MemScale: 0.5, SpotUSDPerHour: 0.5, OnDemandUSDPerHour: 1},
			}
		})},
		{"free instances", ok(func(p *Params) {
			p.Types = []InstanceType{{Name: "free", GPUs: 1, Speed: 1, MemScale: 1}}
		})},
	}
	for _, c := range valid {
		if err := c.p.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
	}

	invalid := []struct {
		name string
		p    Params
		want string // substring of the error
	}{
		{"zero GPUs per instance", ok(func(p *Params) { p.GPUsPerInstance = 0 }), "GPUsPerInstance"},
		{"negative grace period", ok(func(p *Params) { p.GracePeriod = -1 }), "grace"},
		{"negative acquire delay", ok(func(p *Params) { p.AcquireDelay = -0.5 }), "acquire"},
		{"unnamed type", ok(func(p *Params) {
			p.Types = []InstanceType{{GPUs: 4, Speed: 1, MemScale: 1}}
		}), "empty name"},
		{"type without GPUs", ok(func(p *Params) {
			p.Types = []InstanceType{{Name: "t", GPUs: 0, Speed: 1, MemScale: 1}}
		}), "GPUs"},
		{"type with zero speed", ok(func(p *Params) {
			p.Types = []InstanceType{{Name: "t", GPUs: 4, MemScale: 1}}
		}), "speed"},
		{"type with negative memory scale", ok(func(p *Params) {
			p.Types = []InstanceType{{Name: "t", GPUs: 4, Speed: 1, MemScale: -1}}
		}), "memory"},
		{"type with negative price", ok(func(p *Params) {
			p.Types = []InstanceType{{Name: "t", GPUs: 4, Speed: 1, MemScale: 1, SpotUSDPerHour: -1}}
		}), "price"},
		{"duplicate type names", ok(func(p *Params) {
			p.Types = []InstanceType{
				{Name: "t", GPUs: 4, Speed: 1, MemScale: 1},
				{Name: "t", GPUs: 2, Speed: 1, MemScale: 1},
			}
		}), "duplicate"},
	}
	for _, c := range invalid {
		err := c.p.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.p)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestNewPanicsOnInvalidParams keeps the constructor contract: New refuses
// the misconfigurations Validate rejects.
func TestNewPanicsOnInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a heterogeneous-type misconfiguration")
		}
	}()
	p := DefaultParams()
	p.Types = []InstanceType{{Name: "bad", GPUs: -1, Speed: 1, MemScale: 1}}
	New(sim.New(), p, nil)
}

// TestZeroGracePeriodTerminatesAtNotice runs the zero-grace edge end to
// end: the preemption notice and the termination land at the same instant.
func TestZeroGracePeriodTerminatesAtNotice(t *testing.T) {
	s := sim.New()
	r := &recorder{s: s}
	p := DefaultParams()
	p.GracePeriod = 0
	c := New(s, p, r)
	c.Prealloc(2, Spot)
	s.At(100, func() { c.preemptSpot(1) })
	s.Run(200)
	if len(r.notices) != 1 || len(r.terminated) != 1 {
		t.Fatalf("notices=%d terminated=%d, want 1/1", len(r.notices), len(r.terminated))
	}
	if r.notices[0].at != 100 || r.notices[0].deadline != 100 || r.terminated[0].at != 100 {
		t.Errorf("zero grace period: notice at %v (deadline %v), terminated at %v — all want 100",
			r.notices[0].at, r.notices[0].deadline, r.terminated[0].at)
	}
}

// TestHeterogeneousLaunchCycle pins the deterministic type interleaving:
// spot launches cycle through the type table in order, with per-type GPU
// counts and prices.
func TestHeterogeneousLaunchCycle(t *testing.T) {
	s := sim.New()
	r := &recorder{s: s}
	p := DefaultParams()
	p.Types = []InstanceType{
		{Name: "big", GPUs: 4, Speed: 1, MemScale: 1, SpotUSDPerHour: 3.6, OnDemandUSDPerHour: 7.2},
		{Name: "small", GPUs: 2, Speed: 1.5, MemScale: 1, SpotUSDPerHour: 1.8, OnDemandUSDPerHour: 3.6},
	}
	c := New(s, p, r)
	insts := c.Prealloc(4, Spot)
	wantTypes := []string{"big", "small", "big", "small"}
	wantGPUs := []int{4, 2, 4, 2}
	for i, inst := range insts {
		if inst.Type.Name != wantTypes[i] || len(inst.GPUs) != wantGPUs[i] {
			t.Errorf("instance %d: type %q with %d GPUs, want %q with %d",
				i, inst.Type.Name, len(inst.GPUs), wantTypes[i], wantGPUs[i])
		}
	}
	if insts[1].GPUSpeed() != 1.5 || insts[0].GPUSpeed() != 1 {
		t.Errorf("GPU speeds = %v/%v, want 1/1.5", insts[0].GPUSpeed(), insts[1].GPUSpeed())
	}
	// On-demand always allocates the primary type.
	od := c.AllocOnDemand(2)
	for _, inst := range od {
		if inst.Type.Name != "big" {
			t.Errorf("on-demand instance got type %q, want primary type big", inst.Type.Name)
		}
	}
	// Per-type billing after one hour: the four spot instances bill the
	// whole hour at their own type's spot price, the two on-demand ones
	// bill the primary type's on-demand price from readiness (t=120).
	s.Run(3600)
	want := 2*(3.6+1.8) + 2*7.2*((3600-120)/3600.0)
	if got := c.CostUSD(); got < want-1e-6 || got > want+1e-6 {
		t.Errorf("heterogeneous billing = %v, want %v", got, want)
	}
}

// TestUntypedInstanceDefaults pins the zero-value compatibility contract:
// instances built without a type (tests, legacy paths) report baseline
// speed and memory multipliers.
func TestUntypedInstanceDefaults(t *testing.T) {
	inst := &Instance{}
	if inst.GPUSpeed() != 1 || inst.MemScale() != 1 {
		t.Errorf("untyped instance: speed %v, mem %v — want 1, 1", inst.GPUSpeed(), inst.MemScale())
	}
}
